"""Fast loop vs reference loop: same events, same order, same stream.

The production event-horizon loop (``System.run()``) and the
single-heap reference loop (``System.run(reference=True)``) implement
one event-ordering contract (see ``repro/sim/system.py``).  These tests
pin them to each other directly -- same per-bank command stream digest,
same ``SystemResult`` -- across every mitigation class the scheduler
special-cases, with refresh off, and with observability sampling on.
The golden suite separately pins both to the pre-rewrite recordings;
this suite is the fast/reference bridge that localises a divergence to
the loop rewrite rather than the controller.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.sim import System, SystemConfig
from repro.workloads.trace import WorkloadProfile

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "golden_generate_loops", _GOLDEN_DIR / "generate.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GEN = _load_generator()

#: Sparse traffic with long idle gaps between requests: the fast loop
#: spends most of its iterations fast-forwarding across REF horizons
#: and re-arming channel wakes at already-armed cycles, which is
#: exactly where the seq-revival bookkeeping must match the reference.
_SPARSE = WorkloadProfile(
    name="loop-sparse", mpki=0.4, row_buffer_locality=0.3,
    write_fraction=0.25, footprint_pages=512)


def _result_fields(result):
    stats = result.stats
    return {
        "cycles": result.cycles,
        "thread_finish_cycles": list(result.thread_finish_cycles),
        "reads_completed": result.reads_completed,
        "requests_issued": result.requests_issued,
        "refreshes": result.refreshes,
        "rfms": result.rfms,
        "stats": {name: getattr(stats, name) for name in vars(stats)},
    }


def _run_pair(build):
    """Build two identical systems; run one fast, one reference."""
    fast_sys = build()
    ref_sys = build()
    fast_result, fast_digest, fast_events = GEN.run_captured(fast_sys)
    ref_result, ref_digest, ref_events = _run_captured_reference(ref_sys)
    assert fast_events == ref_events
    assert fast_digest == ref_digest
    assert _result_fields(fast_result) == _result_fields(ref_result)
    return fast_result


def _run_captured_reference(system):
    """``GEN.run_captured`` but through the reference loop."""
    import hashlib

    from repro.dram.bank import Bank

    addr_of = {id(bank): addr
               for addr, bank in system.device.banks.items()}
    events = []
    originals = {}

    def make_wrapper(name, orig):
        def wrapped(self, *args, **kwargs):
            out = orig(self, *args, **kwargs)
            addr = addr_of.get(id(self))
            if addr is not None:
                where = f"{addr.channel}.{addr.rank}.{addr.bank}"
                if name == "issue_act":
                    events.append(f"{where} ACT {args[0]} @{args[1]}")
                else:
                    events.append(
                        f"{where} {name[6:].upper()} @{args[0]}")
            return out
        return wrapped

    for name in GEN._BANK_COMMANDS:
        originals[name] = getattr(Bank, name)
        setattr(Bank, name, make_wrapper(name, originals[name]))
    try:
        result = system.run(reference=True)
    finally:
        for name, orig in originals.items():
            setattr(Bank, name, orig)
    digest = hashlib.sha256("\n".join(events).encode()).hexdigest()
    return result, digest, len(events)


class TestFastMatchesReference:
    @pytest.mark.parametrize("scheme", GEN.SCHEMES)
    def test_golden_scenarios(self, scheme):
        _run_pair(lambda: GEN.build_system(scheme)[0])

    def test_sparse_idle_traffic(self):
        def build():
            config = SystemConfig(requests_per_thread=300, seed=77)
            return System([_SPARSE] * 3, config=config)
        _run_pair(build)

    def test_refresh_disabled(self):
        def build():
            config = SystemConfig(requests_per_thread=300, seed=31,
                                  enable_refresh=False)
            return System([_SPARSE, GEN.THREADS[0]], config=config)
        result = _run_pair(build)
        assert result.refreshes == 0

    def test_with_observability_sampling(self):
        from repro.obs import Observability

        def build(obs):
            config = SystemConfig(requests_per_thread=250, seed=19)
            return System([GEN.THREADS[0], _SPARSE], config=config,
                          obs=obs)

        obs_fast = Observability.in_memory(sample_interval=5_000)
        obs_ref = Observability.in_memory(sample_interval=5_000)
        fast = build(obs_fast).run()
        ref = build(obs_ref).run(reference=True)
        obs_fast.close()
        obs_ref.close()
        assert _result_fields(fast) == _result_fields(ref)


class TestDeterminism:
    def test_fast_loop_is_deterministic(self):
        def build():
            config = SystemConfig(requests_per_thread=300, seed=77)
            return System([_SPARSE] * 3, config=config)
        _, digest_a, events_a = GEN.run_captured(build())
        _, digest_b, events_b = GEN.run_captured(build())
        assert events_a == events_b
        assert digest_a == digest_b

    def test_loops_share_final_cycle(self):
        system_fast, _ = GEN.build_system("none")
        system_ref, _ = GEN.build_system("none")
        fast = system_fast.run()
        ref = system_ref.run(reference=True)
        assert fast.cycles == ref.cycles
