"""Workload profiles, trace generation, and the paper's mixes."""

import pytest

from repro.controller.address import AddressMapping
from repro.dram.device import DramGeometry
from repro.workloads import (
    GAPBS_PROFILES,
    NPB_PROFILES,
    SPEC_HIGH,
    SPEC_LOW,
    SPEC_MED,
    SPEC_PROFILES,
    TraceGenerator,
    WorkloadProfile,
    mix_blend,
    mix_high,
    mix_random,
    random_stream_profile,
    spec_group,
    stream_profile,
)

GEOMETRY = DramGeometry()
MAPPING = AddressMapping(GEOMETRY)


def take(gen, n):
    out = []
    stream = gen.requests()
    for _ in range(n):
        out.append(next(stream))
    return out


class TestProfiles:
    def test_paper_groups_complete(self):
        assert set(SPEC_HIGH) == {"bwaves", "fotonik3d", "lbm", "mcf", "wrf"}
        assert set(SPEC_MED) == {"deepsjeng", "gcc", "xz"}
        assert set(SPEC_LOW) == {"exchange2", "imagick", "leela"}
        assert set(SPEC_PROFILES) == set(SPEC_HIGH + SPEC_MED + SPEC_LOW)

    def test_intensity_ordering(self):
        """The defining property of the groups: high > med > low MPKI."""
        high = min(p.mpki for p in spec_group("high"))
        med_hi = max(p.mpki for p in spec_group("med"))
        med_lo = min(p.mpki for p in spec_group("med"))
        low = max(p.mpki for p in spec_group("low"))
        assert high > med_hi
        assert med_lo > low

    def test_intensity_class(self):
        assert SPEC_PROFILES["lbm"].intensity_class() == "high"
        assert SPEC_PROFILES["gcc"].intensity_class() == "med"
        assert SPEC_PROFILES["leela"].intensity_class() == "low"

    def test_gapbs_npb_exist(self):
        assert len(GAPBS_PROFILES) == 6
        assert len(NPB_PROFILES) == 6
        # GAPBS traversals have poor locality (pointer chasing).
        assert all(p.row_buffer_locality <= 0.4
                   for p in GAPBS_PROFILES.values())

    def test_spec_group_rejects_unknown(self):
        with pytest.raises(ValueError):
            spec_group("extreme")

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", mpki=0, row_buffer_locality=0.5)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", mpki=1, row_buffer_locality=1.0)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", mpki=1, row_buffer_locality=0.5,
                            zipf_alpha=-1)

    def test_mean_run_length(self):
        p = WorkloadProfile("x", mpki=1, row_buffer_locality=0.75)
        assert p.mean_run_length == pytest.approx(4.0)


class TestTraceGenerator:
    def test_deterministic_under_seed(self):
        a = take(TraceGenerator(SPEC_PROFILES["mcf"], MAPPING, 0, seed=5), 50)
        b = take(TraceGenerator(SPEC_PROFILES["mcf"], MAPPING, 0, seed=5), 50)
        assert a == b

    def test_different_threads_differ(self):
        a = take(TraceGenerator(SPEC_PROFILES["mcf"], MAPPING, 0, seed=5), 50)
        b = take(TraceGenerator(SPEC_PROFILES["mcf"], MAPPING, 1, seed=5), 50)
        assert a != b

    def test_locations_are_in_geometry(self):
        for _gap, loc, _w in take(
                TraceGenerator(SPEC_PROFILES["bwaves"], MAPPING, 2), 200):
            assert 0 <= loc.channel < GEOMETRY.channels
            assert 0 <= loc.row < GEOMETRY.rows_per_bank
            assert 0 <= loc.column < GEOMETRY.columns_per_row

    def test_gaps_scale_with_mpki(self):
        hot = take(TraceGenerator(random_stream_profile(), MAPPING, 0), 300)
        cold = take(TraceGenerator(SPEC_PROFILES["leela"], MAPPING, 0), 300)
        mean_hot = sum(g for g, _l, _w in hot) / len(hot)
        mean_cold = sum(g for g, _l, _w in cold) / len(cold)
        assert mean_cold > 20 * mean_hot

    def test_sequential_profile_streams_rows(self):
        reqs = take(TraceGenerator(stream_profile(), MAPPING, 0), 400)
        # High-locality stream: most consecutive accesses share the row.
        same = sum(
            1 for (g1, a, w1), (g2, b, w2) in zip(reqs, reqs[1:])
            if (a.row, a.bank, a.rank) == (b.row, b.bank, b.rank))
        assert same / len(reqs) > 0.7

    def test_zipf_concentrates_accesses(self):
        flat = WorkloadProfile("flat", mpki=20, row_buffer_locality=0.0,
                               footprint_pages=4096)
        hot = WorkloadProfile("hot", mpki=20, row_buffer_locality=0.0,
                              footprint_pages=4096, zipf_alpha=1.2)
        def top_share(profile):
            counts = {}
            for _g, loc, _w in take(
                    TraceGenerator(profile, MAPPING, 0, seed=9), 2000):
                key = (loc.rank, loc.bank, loc.row)
                counts[key] = counts.get(key, 0) + 1
            return max(counts.values()) / 2000
        assert top_share(hot) > 4 * top_share(flat)

    def test_write_fraction_respected(self):
        p = WorkloadProfile("w", mpki=10, row_buffer_locality=0.0,
                            write_fraction=0.5)
        reqs = take(TraceGenerator(p, MAPPING, 0, seed=3), 1000)
        writes = sum(1 for _g, _l, w in reqs if w)
        assert 380 < writes < 620


class TestMixes:
    def test_mix_high_is_all_high(self):
        profiles = mix_high(14)
        assert len(profiles) == 14
        assert all(p.name in SPEC_HIGH for p in profiles)

    def test_mix_blend_spans_groups(self):
        profiles = mix_blend(14)
        classes = {p.intensity_class() for p in profiles}
        assert classes == {"high", "med", "low"}

    def test_mix_random_deterministic_and_varied(self):
        a = mix_random(seed=1, threads=16)
        b = mix_random(seed=1, threads=16)
        c = mix_random(seed=2, threads=16)
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.name for p in a] != [p.name for p in c]
        assert len(a) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            mix_high(0)
        with pytest.raises(ValueError):
            mix_blend(-1)
        with pytest.raises(ValueError):
            mix_random(seed=1, threads=0)
