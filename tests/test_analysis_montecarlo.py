"""Monte Carlo adversarial simulation against the real SHADOW mechanism.

Uses scaled-down subarrays and thresholds so empirical flip rates are
measurable; the assertions check directional agreement with the
Appendix XI analysis (SHADOW protects; disabling its pieces weakens it).
"""

import pytest

from repro.analysis.montecarlo import flip_rate, simulate_attack
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.adversary import (
    ScenarioIAttacker,
    ScenarioIIAttacker,
)
from repro.utils.rng import SystemRng

LAYOUT = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=32)


class _FixedRowAttacker:
    """Hammers one fixed PA row forever (no adaptation)."""

    def __init__(self, row):
        self.row = row

    def interval_rows(self, interval, acts):
        return [self.row] * acts


class TestSimulateAttack:
    def test_no_shuffle_fixed_row_flips_quickly(self):
        result = simulate_attack(
            _FixedRowAttacker(10), LAYOUT, hcnt=64, raaimt=16,
            intervals=50, shuffle=False, incremental_refresh=False)
        assert result.flipped
        assert result.first_flip_interval is not None

    def test_shadow_stops_fixed_row_attacker(self):
        """A non-adaptive single-row attacker is SHADOW's best case:
        the aggressor is in the history every interval, so it is
        shuffled every RFM and never accumulates H_cnt.

        Parameters are chosen so the Appendix XI scenario-I bound is
        tiny at this scale (M1 = hcnt/raaimt = 16 hits needed within a
        33-interval incremental window at p = 3.5/32)."""
        result = simulate_attack(
            _FixedRowAttacker(10), LAYOUT, hcnt=64, raaimt=4,
            intervals=400)
        assert not result.flipped

    def test_result_fields(self):
        result = simulate_attack(
            _FixedRowAttacker(3), LAYOUT, hcnt=1000, raaimt=8,
            intervals=10)
        assert result.intervals_run == 10
        assert result.total_acts == 80
        assert result.max_disturbance >= 0
        with pytest.raises(ValueError):
            simulate_attack(_FixedRowAttacker(3), LAYOUT, hcnt=10,
                            raaimt=8, intervals=0)


class TestDirectionalAgreement:
    """Flip rates must order the way the security analysis predicts."""

    def test_incremental_refresh_improves_protection(self):
        def make(seed):
            return ScenarioIIAttacker(LAYOUT, subarray=0, n_aggr=4,
                                      rng=SystemRng(seed))
        with_ir = flip_rate(make, LAYOUT, hcnt=48, raaimt=16,
                            intervals=120, trials=30, seed=1)
        without = flip_rate(make, LAYOUT, hcnt=48, raaimt=16,
                            intervals=120, trials=30, seed=1,
                            incremental_refresh=False)
        assert with_ir <= without

    def test_higher_hcnt_is_safer(self):
        def make(seed):
            return ScenarioIAttacker(LAYOUT, subarray=0,
                                     rng=SystemRng(seed))
        weak = flip_rate(make, LAYOUT, hcnt=24, raaimt=16,
                         intervals=80, trials=25, seed=2)
        strong = flip_rate(make, LAYOUT, hcnt=96, raaimt=16,
                           intervals=80, trials=25, seed=2)
        assert strong <= weak

    def test_shuffle_is_the_main_defence(self):
        def make(seed):
            return ScenarioIIAttacker(LAYOUT, subarray=0, n_aggr=2,
                                      rng=SystemRng(seed))
        shuffled = flip_rate(make, LAYOUT, hcnt=160, raaimt=16,
                             intervals=60, trials=25, seed=3)
        static = flip_rate(make, LAYOUT, hcnt=160, raaimt=16,
                           intervals=60, trials=25, seed=3,
                           shuffle=False, incremental_refresh=False)
        assert shuffled < static
        assert static > 0.9   # without any defence the attack lands

    def test_validation(self):
        with pytest.raises(ValueError):
            flip_rate(lambda s: _FixedRowAttacker(1), LAYOUT, hcnt=10,
                      raaimt=4, intervals=10, trials=0)
