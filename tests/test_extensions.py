"""Section VIII extensions: RFM filtering and sPPR resources."""

import pytest

from repro.core import Shadow, ShadowConfig
from repro.dram.device import BankAddress, DramGeometry
from repro.dram.sppr import SpprConfig, SpprState
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.mitigations import NoMitigation, Parfm
from repro.mitigations.filtered import FilteredRfm

GEOMETRY = DramGeometry(
    channels=1, ranks_per_channel=1, banks_per_rank=2,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64),
)
ADDR = BankAddress(0, 0, 0)


def make_filtered(threshold=8, **kw):
    inner = Shadow(ShadowConfig(raaimt=16, rng_kind="system"))
    filtered = FilteredRfm(inner, hazard_threshold=threshold, **kw)
    filtered.bind(GEOMETRY, DDR4_2666)
    return filtered, inner


class TestFilteredRfm:
    def test_wraps_rfm_schemes_only(self):
        with pytest.raises(ValueError):
            FilteredRfm(NoMitigation(), hazard_threshold=8)
        with pytest.raises(ValueError):
            FilteredRfm(Parfm(raaimt=8), hazard_threshold=0)

    def test_pass_through_surface(self):
        filtered, inner = make_filtered()
        assert filtered.uses_rfm
        assert filtered.raaimt == inner.raaimt
        assert filtered.act_extra_cycles == inner.act_extra_cycles
        assert filtered.translate(ADDR, 5) == inner.translate(ADDR, 5)

    def test_cold_bank_rfms_are_filtered(self):
        filtered, inner = make_filtered(threshold=8)
        # 16 ACTs, each to a different row: no row near the threshold.
        for i in range(16):
            da = filtered.translate(ADDR, i)
            filtered.on_activate(ADDR, i, da, cycle=i)
        outcome = filtered.on_rfm(ADDR, cycle=100)
        assert filtered.rfms_filtered == 1
        assert outcome.copies == []
        assert inner.total_shuffles() == 0

    def test_hot_bank_rfms_pass_through(self):
        filtered, inner = make_filtered(threshold=8)
        da = filtered.translate(ADDR, 3)
        for i in range(16):   # one row hammered: crosses the threshold
            filtered.on_activate(ADDR, 3, filtered.translate(ADDR, 3),
                                 cycle=i)
        outcome = filtered.on_rfm(ADDR, cycle=100)
        assert filtered.rfms_passed == 1
        assert inner.total_shuffles() == 1
        assert outcome.copies

    def test_hazard_state_resets_per_rfm(self):
        filtered, inner = make_filtered(threshold=4)
        for i in range(8):
            filtered.on_activate(ADDR, 3, filtered.translate(ADDR, 3), i)
        filtered.on_rfm(ADDR, 50)           # hot -> passes
        outcome = filtered.on_rfm(ADDR, 60)  # nothing since -> filtered
        assert filtered.rfms_passed == 1
        assert filtered.rfms_filtered == 1

    def test_hazard_is_per_bank(self):
        filtered, inner = make_filtered(threshold=4)
        other = BankAddress(0, 0, 1)
        for i in range(8):
            filtered.on_activate(ADDR, 3, filtered.translate(ADDR, 3), i)
        assert filtered.hazard(ADDR, 10)
        assert not filtered.hazard(other, 10)


class TestSppr:
    def test_repair_and_resolve(self):
        state = SpprState()
        spare = state.repair(ADDR, faulty_row=42)
        assert state.resolve(ADDR, 42) == spare
        assert state.resolve(ADDR, 43) is None
        assert state.repairs_used(ADDR) == 1

    def test_repair_idempotent(self):
        state = SpprState()
        assert state.repair(ADDR, 42) == state.repair(ADDR, 42)
        assert state.repairs_used(ADDR) == 1

    def test_per_bank_limit(self):
        state = SpprState(SpprConfig(spare_rows_per_bank=1,
                                     repairs_per_bank_group=8))
        state.repair(ADDR, 1)
        with pytest.raises(RuntimeError):
            state.repair(ADDR, 2)

    def test_bank_group_limit(self):
        state = SpprState(SpprConfig(spare_rows_per_bank=4,
                                     repairs_per_bank_group=2,
                                     banks_per_group=4))
        state.repair(BankAddress(0, 0, 0), 1)
        state.repair(BankAddress(0, 0, 1), 1)
        with pytest.raises(RuntimeError):
            state.repair(BankAddress(0, 0, 2), 1)
        # A different bank group still has budget.
        state.repair(BankAddress(0, 0, 4), 1)

    def test_power_cycle_clears_soft_repairs(self):
        state = SpprState()
        state.repair(ADDR, 42)
        state.power_cycle()
        assert state.resolve(ADDR, 42) is None
        assert state.can_repair(ADDR)

    def test_donatable_rows(self):
        state = SpprState(SpprConfig(spare_rows_per_bank=2))
        assert state.donatable_rows_per_subarray(16) == pytest.approx(1 / 8)
        with pytest.raises(ValueError):
            state.donatable_rows_per_subarray(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpprConfig(spare_rows_per_bank=0)
        state = SpprState()
        with pytest.raises(ValueError):
            state.repair(ADDR, -1)
