"""Baseline mitigations: behavioural contracts of each scheme."""

import pytest

from repro.dram.device import BankAddress, DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.mitigations import (
    BlockHammer,
    BlockHammerConfig,
    DoubleRefreshRate,
    Graphene,
    Mithril,
    NoMitigation,
    Para,
    Parfm,
    RandomizedRowSwap,
    RrsConfig,
    mithril_area,
    mithril_perf,
)
from repro.mitigations.parfm import parfm_raaimt, shadow_raaimt
from repro.utils.rng import SystemRng

T = DDR4_2666
GEOMETRY = DramGeometry(
    channels=1, ranks_per_channel=1, banks_per_rank=2,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=64),
)
ADDR = BankAddress(0, 0, 0)


def bind(mitigation):
    mitigation.bind(GEOMETRY, T)
    return mitigation


class TestNoMitigation:
    def test_is_transparent(self):
        m = bind(NoMitigation())
        assert m.act_extra_cycles == 0
        assert not m.uses_rfm
        assert m.refresh_interval_scale == 1.0
        assert m.translate(ADDR, 10) == GEOMETRY.layout.identity_da(10)
        assert m.before_activate(ADDR, 10, 5) == 5
        assert m.on_activate(ADDR, 10, 10, 5) is None


class TestDrr:
    def test_halves_trefi(self):
        assert bind(DoubleRefreshRate()).refresh_interval_scale == 0.5

    def test_custom_factor(self):
        assert bind(DoubleRefreshRate(4)).refresh_interval_scale == 0.25
        with pytest.raises(ValueError):
            DoubleRefreshRate(0.5)


class TestPara:
    def test_probability_derivation(self):
        from repro.mitigations.para import para_probability
        p = para_probability(4096, target_failure=1e-4)
        assert 0 < p < 1
        # Lower hcnt needs a higher sampling probability.
        assert para_probability(2048) > para_probability(8192)

    def test_samples_at_configured_rate(self):
        m = bind(Para(probability=1.0, rng=SystemRng(1)))
        out = m.on_activate(ADDR, 10, GEOMETRY.layout.identity_da(10), 0)
        assert out.trr_rows  # p=1 always refreshes a neighbour
        m0 = bind(Para(probability=0.0, rng=SystemRng(1)))
        out0 = m0.on_activate(ADDR, 10, GEOMETRY.layout.identity_da(10), 0)
        assert not out0.trr_rows

    def test_neighbours_stay_in_subarray(self):
        m = bind(Para(probability=1.0, blast_radius=3, rng=SystemRng(2)))
        da_edge = GEOMETRY.layout.da_range(0)[0]  # first row of subarray 0
        out = m.on_activate(ADDR, 0, da_edge, 0)
        lo, hi = GEOMETRY.layout.da_range(0)
        assert all(lo <= r < hi for r in out.trr_rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            Para(probability=1.5)
        with pytest.raises(ValueError):
            Para(probability=0.5, blast_radius=0)


class TestParfm:
    def test_raaimt_derivations(self):
        assert shadow_raaimt(4096) == 64
        assert parfm_raaimt(4096) == 32          # half of SHADOW's
        assert parfm_raaimt(4096, blast_radius=3) < parfm_raaimt(4096)

    def test_uses_rfm(self):
        m = bind(Parfm(raaimt=16))
        assert m.uses_rfm
        assert m.raaimt == 16

    def test_rfm_refreshes_neighbours_of_recent_row(self):
        m = bind(Parfm(raaimt=8, rng=SystemRng(3)))
        da = GEOMETRY.layout.identity_da(10)
        for _ in range(8):
            m.on_activate(ADDR, 10, da, 0)
        out = m.on_rfm(ADDR, 100)
        assert set(out.refreshed_rows) == {da - 1, da + 1}
        assert out.duration == 2 * T.tRC

    def test_rfm_with_no_history(self):
        m = bind(Parfm(raaimt=8))
        out = m.on_rfm(ADDR, 0)
        assert out.refreshed_rows == []

    def test_blast_radius_widens_trr(self):
        m = bind(Parfm(raaimt=4, blast_radius=3, rng=SystemRng(1)))
        da = GEOMETRY.layout.identity_da(10)
        for _ in range(4):
            m.on_activate(ADDR, 10, da, 0)
        out = m.on_rfm(ADDR, 0)
        assert len(out.refreshed_rows) == 6


class TestMithril:
    def test_configs(self):
        perf = mithril_perf(4096)
        area = mithril_area(4096)
        assert perf.raaimt > area.raaimt
        assert perf.table_kilobytes() > area.table_kilobytes()
        assert area.raaimt == 32

    def test_rfm_targets_hottest_row(self):
        m = bind(Mithril(raaimt=8, table_entries=8))
        hot = GEOMETRY.layout.identity_da(20)
        for _ in range(10):
            m.on_activate(ADDR, 20, hot, 0)
        m.on_activate(ADDR, 30, GEOMETRY.layout.identity_da(30), 0)
        out = m.on_rfm(ADDR, 0)
        assert set(out.refreshed_rows) == {hot - 1, hot + 1}

    def test_settling_rotates_targets(self):
        m = bind(Mithril(raaimt=8, table_entries=8))
        a, b = GEOMETRY.layout.identity_da(20), GEOMETRY.layout.identity_da(40)
        for _ in range(10):
            m.on_activate(ADDR, 20, a, 0)
        for _ in range(9):
            m.on_activate(ADDR, 40, b, 0)
        first = m.on_rfm(ADDR, 0)
        second = m.on_rfm(ADDR, 1)
        assert set(first.refreshed_rows) == {a - 1, a + 1}
        assert set(second.refreshed_rows) == {b - 1, b + 1}

    def test_empty_table(self):
        m = bind(Mithril(raaimt=8, table_entries=4))
        assert m.on_rfm(ADDR, 0).refreshed_rows == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Mithril(raaimt=0, table_entries=4)
        with pytest.raises(ValueError):
            Mithril(raaimt=8, table_entries=0)


class TestGraphene:
    def test_trr_fires_at_threshold(self):
        m = bind(Graphene(hcnt=64, blast_radius=1))
        da = GEOMETRY.layout.identity_da(10)
        fired = []
        for i in range(m.threshold + 1):
            out = m.on_activate(ADDR, 10, da, i)
            if out.trr_rows:
                fired.append(i)
        assert fired, "Graphene never issued a TRR"
        assert fired[0] == m.threshold - 1

    def test_threshold_scales_with_blast(self):
        narrow = Graphene(hcnt=512, blast_radius=1)
        wide = Graphene(hcnt=512, blast_radius=3)
        assert wide.threshold < narrow.threshold

    def test_validation(self):
        with pytest.raises(ValueError):
            Graphene(hcnt=4)


class TestBlockHammer:
    def test_blacklisted_rows_get_throttled(self):
        m = bind(BlockHammer(BlockHammerConfig(hcnt=64)))
        threshold = m.config.blacklist_threshold
        cycle = 0
        for _ in range(threshold + 1):
            cycle = m.before_activate(ADDR, 10, cycle)
            m.on_activate(ADDR, 10, 10, cycle)
            cycle += T.tRC
        # Now blacklisted: the next ACT must wait ~tREFW/hcnt.
        allowed = m.before_activate(ADDR, 10, cycle)
        assert allowed > cycle
        assert m.throttled_acts >= 1

    def test_cold_rows_unaffected(self):
        m = bind(BlockHammer(BlockHammerConfig(hcnt=64)))
        assert m.before_activate(ADDR, 10, 123) == 123

    def test_delay_grows_as_hcnt_drops(self):
        low = bind(BlockHammer.for_hcnt(2048))
        high = bind(BlockHammer.for_hcnt(16384))
        assert low._delay > high._delay

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockHammerConfig(hcnt=1)
        with pytest.raises(ValueError):
            BlockHammerConfig(hcnt=64, safety_margin=0.5)


class TestRrs:
    def test_swap_threshold(self):
        assert RrsConfig(hcnt=4096).swap_threshold == 682
        with pytest.raises(ValueError):
            RrsConfig(hcnt=4)

    def test_swap_fires_and_remaps(self):
        m = bind(RandomizedRowSwap(RrsConfig(hcnt=60), rng=SystemRng(4)))
        original = m.translate(ADDR, 10)
        swapped = None
        for i in range(m.config.swap_threshold + 1):
            out = m.on_activate(ADDR, 10, m.translate(ADDR, 10), i)
            if out.channel_block_cycles:
                swapped = out
                break
        assert swapped is not None
        assert m.swaps == 1
        assert m.translate(ADDR, 10) != original
        assert swapped.channel_block_cycles == T.cycles(4000.0)
        assert len(swapped.restored_rows) == 2

    def test_translation_stays_bijective_after_many_swaps(self):
        m = bind(RandomizedRowSwap(RrsConfig(hcnt=60), rng=SystemRng(8)))
        rng = SystemRng(9)
        for i in range(3000):
            pa = rng.randrange(16)  # a small hot set forces swaps
            m.on_activate(ADDR, pa, m.translate(ADDR, pa), i)
        assert m.swaps > 0
        das = {m.translate(ADDR, pa)
               for pa in range(GEOMETRY.rows_per_bank)}
        assert len(das) == GEOMETRY.rows_per_bank
