"""Trace-sink tests: JSONL round-trip and Chrome trace-event validity
on a short seeded SHADOW run (satellite S4)."""

import json

import pytest

from repro.core import Shadow, ShadowConfig
from repro.dram.device import DramGeometry
from repro.obs import (
    ChromeTraceSink,
    JsonlTraceSink,
    MemoryTraceSink,
    Observability,
    read_jsonl,
)
from repro.sim import System, SystemConfig
from repro.workloads.synthetic import random_stream_profile, stream_profile

_GEOMETRY = DramGeometry(channels=1, ranks_per_channel=1, banks_per_rank=4)


def _run(obs, requests=300):
    config = SystemConfig(geometry=_GEOMETRY, seed=7,
                          requests_per_thread=requests)
    profiles = [random_stream_profile(), stream_profile()]
    mitigation = Shadow(ShadowConfig(raaimt=32, rng_kind="system"))
    result = System(profiles, mitigation, config=config, obs=obs).run()
    obs.close()
    return result


# -- sink unit behaviour -------------------------------------------------------------

class TestMemorySink:
    def test_phases_and_queries(self):
        sink = MemoryTraceSink()
        sink.complete(0, 1, "ACT", "cmd", 100, 20, {"row": 5})
        sink.instant(0, 1, "shuffle", "mitigation", 150)
        sink.counter(0, "queue", 200, {"pending": 3})
        assert sink.events_written == 3
        assert [e["ph"] for e in sink.events] == ["X", "i", "C"]
        assert sink.by_phase("X")[0]["args"] == {"row": 5}
        assert sink.by_name("shuffle")[0]["cycle"] == 150


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.set_timebase(0.75)
        sink.declare_process(0, "channel 0")
        sink.declare_track(0, 1, "bank 0")
        sink.complete(0, 1, "ACT", "cmd", 100, 20, {"row": 5})
        sink.instant(0, 1, "shuffle", "mitigation", 150, {"copies": [[1, 2]]})
        sink.counter(0, "queue", 200, {"pending": 3})
        sink.close()
        sink.close()  # idempotent

        events = read_jsonl(path)
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["name"] for m in metas} == {
            "timebase", "process_name", "thread_name"}
        data = [e for e in events if e["ph"] != "M"]
        assert data == [
            {"ph": "X", "pid": 0, "tid": 1, "name": "ACT", "cat": "cmd",
             "cycle": 100, "dur": 20, "args": {"row": 5}},
            {"ph": "i", "pid": 0, "tid": 1, "name": "shuffle",
             "cat": "mitigation", "cycle": 150,
             "args": {"copies": [[1, 2]]}},
            {"ph": "C", "pid": 0, "name": "queue", "cycle": 200,
             "args": {"pending": 3}},
        ]

    def test_run_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability.to_jsonl(path, sample_interval=2000)
        _run(obs)
        events = read_jsonl(path)
        assert len(events) == obs.sink.events_written + \
            sum(1 for e in events if e["ph"] == "M")
        # Cycle stamps survive losslessly as ints.
        spans = [e for e in events if e["ph"] == "X"]
        assert spans and all(isinstance(e["cycle"], int) for e in spans)
        assert {e["name"] for e in spans} >= {"ACT", "PRE", "RD"}


# -- Chrome trace-event validity ------------------------------------------------------

@pytest.fixture(scope="module")
def chrome_doc(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.trace.json"
    obs = Observability.to_chrome(path, sample_interval=2000)
    _run(obs)
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestChromeTrace:
    def test_document_shape(self, chrome_doc):
        assert set(chrome_doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(chrome_doc["traceEvents"], list)

    def test_required_fields_per_phase(self, chrome_doc):
        for e in chrome_doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
            elif e["ph"] == "i":
                assert e["s"] == "t" and e["ts"] >= 0
            elif e["ph"] == "C":
                assert isinstance(e["args"], dict)
            else:
                assert e["ph"] == "M"

    def test_metadata_names_every_used_track(self, chrome_doc):
        events = chrome_doc["traceEvents"]
        named = {(e["pid"], e["tid"]) for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        used = {(e["pid"], e["tid"]) for e in events if e["ph"] in ("X", "i")}
        assert used <= named

    def test_monotonic_per_track(self, chrome_doc):
        last = {}
        for e in chrome_doc["traceEvents"]:
            if e["ph"] not in ("X", "i"):
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(key, -1.0), (
                f"track {key}: ts went backwards at {e}")
            last[key] = e["ts"]

    def test_command_spans_and_shuffle_instants(self, chrome_doc):
        events = chrome_doc["traceEvents"]
        spans = {e["name"] for e in events if e["ph"] == "X"}
        assert {"ACT", "PRE", "RD"} <= spans
        shuffles = [e for e in events
                    if e["ph"] == "i" and e["name"] == "shuffle"]
        assert shuffles, "seeded SHADOW run must record shuffles"
        for e in shuffles:
            copies = e["args"]["copies"]
            assert copies and all(len(pair) == 2 for pair in copies)

    def test_timebase_scales_ts(self, chrome_doc):
        # DDR4-2666 tCK = 0.75ns -> one cycle is 0.00075us; an ACT at a
        # few thousand cycles lands well under a millisecond of ts.
        spans = [e for e in chrome_doc["traceEvents"] if e["ph"] == "X"]
        assert max(e["ts"] for e in spans) < 1000.0

    def test_counter_tracks_present(self, chrome_doc):
        counters = {e["name"] for e in chrome_doc["traceEvents"]
                    if e["ph"] == "C"}
        assert {"queue_depth", "scheduler", "raa"} <= counters


class TestChromeSinkUnit:
    def test_close_idempotent_and_writes_once(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path, tck_ns=1.0)
        sink.complete(0, 1, "ACT", "cmd", 1000, 10)
        sink.close()
        first = path.read_text(encoding="utf-8")
        sink.close()
        assert path.read_text(encoding="utf-8") == first

    def test_ts_unit_is_microseconds(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path, tck_ns=2.0)
        sink.complete(0, 1, "ACT", "cmd", 1000, 500)
        sink.close()
        doc = json.loads(path.read_text(encoding="utf-8"))
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == pytest.approx(2.0)   # 1000 cy * 2ns = 2us
        assert span["dur"] == pytest.approx(1.0)


# -- mitigation event coverage --------------------------------------------------------

class TestMitigationEvents:
    def test_rrs_swaps_appear_as_instants(self):
        from repro.mitigations import RandomizedRowSwap
        from repro.utils.rng import SystemRng

        config = SystemConfig(geometry=_GEOMETRY, seed=11,
                              requests_per_thread=600)
        obs = Observability.in_memory()
        mitigation = RandomizedRowSwap.for_hcnt(12, rng=SystemRng(3))
        System([random_stream_profile()], mitigation, config=config,
               obs=obs).run()
        obs.close()
        swaps = obs.sink.by_name("swap")
        assert len(swaps) == mitigation.swaps > 0
        for e in swaps:
            args = e["args"]
            assert {"pa_a", "pa_b", "da_a", "da_b",
                    "block_cycles"} <= set(args)
