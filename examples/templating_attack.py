#!/usr/bin/env python3
"""Memory templating: why the shuffle kills the exploit pipeline.

A practical Row Hammer exploit first *templates* memory (hammer, scan
for flips, record which PA triples work), then massages target data
onto a templated victim and re-hammers.  Against a static PA-to-DA
mapping the recorded templates work forever; SHADOW's continuous
shuffle makes them stale before they can be used (paper Section III-A).

Run:  python examples/templating_attack.py
"""

from repro.rowhammer.templating import TemplatingCampaign


def main() -> None:
    print("Templating campaign: probe double-sided pairs across a "
          "subarray,\nthen try to reuse every recorded template.\n")

    for label, shadow in (("static mapping (undefended)", False),
                          ("SHADOW (shuffle every RFM)", True)):
        report = TemplatingCampaign(shadow=shadow, seed=11).run()
        print(f"== {label} ==")
        print(f"  templates found during probing : {report.templates_found}")
        print(f"  exploit attempts               : {report.exploit_attempts}")
        print(f"  still-working templates        : {report.exploit_successes}")
        print(f"  template reuse rate            : {report.reuse_rate:.0%}\n")

    print("With the static mapping every recorded (aggressor, victim)\n"
          "triple keeps working: one templated flip is a durable\n"
          "primitive.  Under SHADOW the aggressors the attacker recorded\n"
          "no longer sit next to the victim by exploit time, so the\n"
          "template yield collapses -- the attacker cannot aim.")


if __name__ == "__main__":
    main()
