#!/usr/bin/env python3
"""Bring-your-own-trace workflow: export, analyze, predict, simulate.

1. Dump a synthetic trace to the portable text format.
2. Reload it and compute the statistics that predict each mitigation's
   behaviour (ACT rate, hottest-row concentration, implied RFM rate).
3. Check those predictions against an actual simulation.

Run:  python examples/trace_analysis.py
"""

import itertools
import tempfile

from repro.controller.address import AddressMapping
from repro.core.config import secure_raaimt
from repro.dram.device import DramGeometry
from repro.mitigations.rrs import RrsConfig
from repro.workloads import SPEC_PROFILES, TraceGenerator
from repro.workloads.stats import analyze, summarize
from repro.workloads.tracefile import dump_trace_file, load_trace_file

HCNT = 2048


def main() -> None:
    mapping = AddressMapping(DramGeometry())
    generator = TraceGenerator(SPEC_PROFILES["mcf"], mapping,
                               thread_id=0, seed=13)
    entries = list(itertools.islice(generator.requests(), 6000))

    with tempfile.NamedTemporaryFile(mode="w", suffix=".trace",
                                     delete=False) as handle:
        path = handle.name
    dump_trace_file(entries, path)
    reloaded = load_trace_file(path)
    print(f"exported + reloaded {len(reloaded)} requests -> {path}\n")

    stats = analyze(reloaded)
    print("== trace statistics (mcf surrogate) ==")
    print(summarize(stats))

    raaimt = secure_raaimt(HCNT)
    swap_threshold = RrsConfig(hcnt=HCNT).swap_threshold
    print(f"\n== predictions at Hcnt={HCNT} ==")
    print(f"  SHADOW RFM rate (RAAIMT={raaimt}): "
          f"{stats.rfm_rate_per_ms(raaimt):.1f} RFMs/ms")
    print(f"  RRS swap threshold {swap_threshold}: hottest row has "
          f"{stats.hottest_row_acts()} ACTs -> "
          f"{'TRIGGERS swaps' if stats.would_trigger(swap_threshold) else 'stays quiet'}")
    print(f"  row-hit potential: {stats.row_hit_potential:.0%} "
          f"(an open-page controller can absorb that much)")


if __name__ == "__main__":
    main()
