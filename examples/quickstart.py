#!/usr/bin/env python3
"""Quickstart: simulate a workload on SHADOW-protected DRAM.

Builds the paper's DDR4-2666 system (Table IV organisation), runs a
memory-intensive SPEC-like workload with and without SHADOW, and prints
the performance cost, the RFM/shuffle activity, and a peek at a
subarray's randomized PA-to-DA mapping.

Run:  python examples/quickstart.py
"""

from repro.core import Shadow, ShadowConfig
from repro.dram.device import BankAddress
from repro.mitigations import NoMitigation
from repro.sim import System, SystemConfig
from repro.workloads import SPEC_PROFILES


def main() -> None:
    config = SystemConfig(requests_per_thread=3000, seed=42)
    workload = [SPEC_PROFILES["mcf"]]  # pointer-chasing, memory-heavy

    print("== baseline (no Row Hammer protection) ==")
    base = System(workload, NoMitigation(), config=config).run()
    print(f"  {base.requests_issued} requests in {base.cycles} DRAM cycles"
          f" ({base.stats.acts} activations, {base.refreshes} refreshes)")

    print("\n== SHADOW (RAAIMT=64, the secure config for Hcnt=4K) ==")
    shadow = Shadow(ShadowConfig(raaimt=64, rng_kind="prince", rng_seed=7))
    protected = System(workload, shadow, config=config).run()
    slowdown = protected.cycles / base.cycles - 1.0
    print(f"  {protected.requests_issued} requests in {protected.cycles} "
          f"DRAM cycles")
    print(f"  slowdown vs baseline: {slowdown:+.2%} "
          f"(paper: <2%; our MLP-limited core hides less of the tRCD'"
          f" addition on this latency-bound workload -- see"
          f" EXPERIMENTS.md, Figure 8)")
    print(f"  RFM commands: {protected.rfms}, row-shuffles: "
          f"{shadow.total_shuffles()}, incremental refreshes: "
          f"{shadow.total_incremental_refreshes()}")
    print(f"  extra ACT latency charged: {shadow.act_extra_cycles} cycles "
          f"(tRCD' = {19 + shadow.act_extra_cycles} tCK; paper: 25 tCK)")

    # Inspect one bank's remapping state.
    addr = BankAddress(0, 0, 0)
    controller = shadow.controller(addr)
    shadow.check_invariants()
    print("\n== PA-to-DA mapping of bank (0,0,0), subarray 0 ==")
    remap = controller.remapping_row(0)
    moved = [(pa, da) for pa, da in enumerate(remap.pa_to_da) if pa != da]
    print(f"  {len(moved)} of {remap.rows} rows relocated; empty slot at "
          f"DA {remap.empty_slot}; incremental pointer at {remap.incr_ptr}")
    for pa, da in moved[:8]:
        print(f"    PA row {pa:4d} -> DA slot {da:4d}")
    if len(moved) > 8:
        print(f"    ... and {len(moved) - 8} more")


if __name__ == "__main__":
    main()
