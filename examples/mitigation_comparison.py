#!/usr/bin/env python3
"""Compare SHADOW against the baseline mitigations on one mix.

Runs mix-blend under each scheme, reporting the relative weighted
speedup (performance), the mitigation activity (RFMs / TRRs / swaps /
throttles), and the silicon cost from the area model -- the trade-off
triangle the paper's Sections III and VII argue about.

Run:  python examples/mitigation_comparison.py
"""

from repro.analysis.area import AreaModel
from repro.core import Shadow, ShadowConfig
from repro.mitigations import (
    BlockHammer,
    DoubleRefreshRate,
    Parfm,
    RandomizedRowSwap,
    mithril_area,
    mithril_perf,
)
from repro.sim import ExperimentRunner, SystemConfig
from repro.workloads import mix_blend

HCNT = 4096


def activity(mitigation) -> str:
    parts = []
    for attr, label in [("total_shuffles", "shuffles"),
                        ("trr_count", "TRRs"),
                        ("swaps", "swaps"),
                        ("throttled_acts", "throttled ACTs")]:
        value = getattr(mitigation, attr, None)
        if callable(value):
            value = value()
        if value:
            parts.append(f"{value} {label}")
    return ", ".join(parts) or "-"


def main() -> None:
    runner = ExperimentRunner(
        config=SystemConfig(requests_per_thread=2000, seed=9))
    profiles = mix_blend(8)
    area = AreaModel()
    comparison_mm2 = area.comparison(hcnt=HCNT)

    schemes = {
        "SHADOW": lambda: Shadow(ShadowConfig(raaimt=64,
                                              rng_kind="system")),
        "PARFM": lambda: Parfm.for_hcnt(HCNT),
        "Mithril-perf": lambda: mithril_perf(HCNT),
        "Mithril-area": lambda: mithril_area(HCNT),
        "DRR": DoubleRefreshRate,
        "BlockHammer": lambda: BlockHammer.for_hcnt(HCNT),
        "RRS": lambda: RandomizedRowSwap.for_hcnt(HCNT),
    }

    print(f"mix-blend, 8 threads, Hcnt={HCNT}, DDR4-2666")
    print(f"{'scheme':14s} {'rel. perf':>9s}  {'chip area':>10s}  activity")
    for name, factory in schemes.items():
        instance = factory()
        rel = runner.relative_performance(profiles, lambda: factory())
        shared = runner.run_shared(profiles, lambda: instance)
        area_key = {"SHADOW": "SHADOW", "Mithril-perf": "Mithril-perf",
                    "Mithril-area": "Mithril-area",
                    "RRS": "RRS (MC-side)"}.get(name)
        mm2 = f"{comparison_mm2[area_key]:.2f}mm2" if area_key else "~0"
        print(f"{name:14s} {rel:9.4f}  {mm2:>10s}  {activity(instance)}")

    report = area.shadow_report()
    print(f"\nSHADOW silicon: {report.total_mm2:.2f} mm2 "
          f"({report.fraction_of_die:.2%} of a DDR5 die; paper: 0.47%), "
          f"capacity overhead {area.capacity_overhead():.2%} "
          f"(paper: 0.6%)")


if __name__ == "__main__":
    main()
