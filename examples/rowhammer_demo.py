#!/usr/bin/env python3
"""Row Hammer end to end: flip bits, then watch SHADOW stop the attack.

Drives the full simulated memory system (cores -> FR-FCFS controller ->
DRAM timing model -> disturbance fault model) with classic attack
patterns.  Without protection, double-sided and blast attacks flip the
victim; with SHADOW the aggressor gets relocated out from under the
attacker.

Run:  python examples/rowhammer_demo.py
"""

from repro.controller.address import MemoryLocation
from repro.controller.mc import McConfig, MemoryController
from repro.controller.request import MemoryRequest
from repro.core import Shadow, ShadowConfig
from repro.dram.device import DramDevice, DramGeometry
from repro.dram.subarray import SubarrayLayout
from repro.dram.timing import DDR4_2666
from repro.mitigations import NoMitigation
from repro.rowhammer import DisturbanceModel, HammerConfig, blast_attack, double_sided

GEOMETRY = DramGeometry(
    channels=1, ranks_per_channel=1, banks_per_rank=2,
    layout=SubarrayLayout(subarrays_per_bank=4, rows_per_subarray=128),
)
HCNT = 2000          # a low threshold, as on vulnerable modern parts
TOTAL_ACTS = 12000   # hammer budget within one refresh window


def hammer(pattern, mitigation) -> DisturbanceModel:
    """Replay an attack pattern through the full controller stack."""
    device = DramDevice(GEOMETRY, DDR4_2666)
    model = DisturbanceModel(
        HammerConfig(hcnt=HCNT, blast_radius=3, layout=GEOMETRY.layout))
    mc = MemoryController(device, mitigation, observer=model,
                          config=McConfig(enable_refresh=False))
    cycle = 0
    for i, row in enumerate(pattern.rows(TOTAL_ACTS)):
        request = MemoryRequest(
            location=MemoryLocation(0, 0, 0, row, column=0),
            is_write=False, thread_id=0, arrival=cycle)
        mc.enqueue(request)
        # Drain serially so every access is a fresh activation (the
        # attacker's cache-flush + fence loop).
        while mc.pending_requests():
            _done, wake = mc.drain(0, cycle)
            if mc.pending_requests() == 0:
                break
            cycle = wake if wake and wake > cycle else cycle + 1
        cycle = max(cycle, request.completed or cycle)
        if model.flipped:
            break
    return model


def report(name: str, model: DisturbanceModel) -> None:
    if model.flipped:
        flip = model.first_flip()
        print(f"  {name}: BIT FLIP in DA row {flip.da_row} after "
              f"{model.total_acts} activations "
              f"(disturbance {flip.disturbance:.0f} >= Hcnt {HCNT})")
    else:
        print(f"  {name}: no flips after {model.total_acts} activations "
              f"(max disturbance {model.max_disturbance():.0f} "
              f"of Hcnt {HCNT})")


def main() -> None:
    victim = 64
    patterns = {
        "double-sided": double_sided(victim),
        "blast (distance 2)": blast_attack(victim, radius=2),
    }

    print(f"== unprotected DRAM (Hcnt={HCNT}) ==")
    for name, pattern in patterns.items():
        report(name, hammer(pattern, NoMitigation()))

    print("\n== SHADOW (RAAIMT=32) ==")
    for name, pattern in patterns.items():
        shadow = Shadow(ShadowConfig(raaimt=32, rng_kind="prince",
                                     rng_seed=3))
        report(name, hammer(pattern, shadow))
        print(f"      ({shadow.total_shuffles()} shuffles relocated the "
              f"aggressors mid-attack)")


if __name__ == "__main__":
    main()
