#!/usr/bin/env python3
"""Adversarial-pattern analysis of SHADOW (paper Section VII-A).

Part 1 evaluates the closed-form Appendix XI bounds for the three
attack scenarios across (RAAIMT, H_cnt) -- the machinery behind
Table II.

Part 2 cross-checks the direction of those bounds empirically: it runs
the real SHADOW mechanism against the scenario adversaries on a
scaled-down subarray (so flips are observable) and prints Monte Carlo
flip rates with and without SHADOW's defenses.

Run:  python examples/attack_analysis.py
"""

from repro.analysis.montecarlo import flip_rate
from repro.analysis.security import SecurityAnalysis, SecurityParams
from repro.dram.subarray import SubarrayLayout
from repro.rowhammer.adversary import ScenarioIAttacker, ScenarioIIAttacker
from repro.utils.rng import SystemRng


def closed_form() -> None:
    print("== Appendix XI closed-form bounds (per DDR5 rank-year) ==")
    for raaimt, hcnt in [(64, 8192), (64, 4096), (32, 2048), (128, 4096)]:
        analysis = SecurityAnalysis(SecurityParams(hcnt=hcnt, raaimt=raaimt))
        r = analysis.rank_year()
        verdict = "SECURE" if r["overall"] < 0.01 else "insecure"
        print(f"  RAAIMT={raaimt:3d} Hcnt={hcnt:5d}: "
              f"P(flip) = {r['overall']:.2e}  [{verdict}]  "
              f"(I={r['scenario1']:.1e} II={r['scenario2']:.1e} "
              f"III={r['scenario3']:.1e})")


def monte_carlo() -> None:
    """Scaled-down subarray (32 rows).  Parameters are chosen so the
    Appendix XI bound is small for SHADOW at this scale: the attack
    needs many shuffle evasions / random re-hits inside one incremental
    window (see tests/test_analysis_montecarlo.py for the arithmetic)."""
    print("\n== Monte Carlo on a scaled-down subarray (32 rows) ==")
    layout = SubarrayLayout(subarrays_per_bank=2, rows_per_subarray=32)
    scenarios = {
        "scenario I (fresh aggressor per interval, Hcnt=64, RAAIMT=4)":
            (lambda seed: ScenarioIAttacker(layout, subarray=0,
                                            rng=SystemRng(seed)),
             dict(hcnt=64, raaimt=4, intervals=300)),
        "scenario II (4 fixed aggressors, Hcnt=160, RAAIMT=16)":
            (lambda seed: ScenarioIIAttacker(layout, subarray=0, n_aggr=4,
                                             rng=SystemRng(seed)),
             dict(hcnt=160, raaimt=16, intervals=120)),
    }
    for name, (make, params) in scenarios.items():
        protected = flip_rate(make, layout=layout, trials=50, seed=5,
                              **params)
        undefended = flip_rate(make, layout=layout, trials=50, seed=5,
                               shuffle=False, incremental_refresh=False,
                               **params)
        print(f"  {name}:")
        print(f"    flip rate without defense: {undefended:.0%}")
        print(f"    flip rate under SHADOW:    {protected:.0%}")


def main() -> None:
    closed_form()
    monte_carlo()


if __name__ == "__main__":
    main()
